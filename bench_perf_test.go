// Hot-path engineering benchmarks: the per-mode simulation cost in
// ns per committed µop (BenchmarkStep_*) and the quickstart scenario as
// one timed unit (BenchmarkQuickstartSweep). These are the quantities
// recorded in the BENCH_*.json trajectory:
//
//	go test -bench 'BenchmarkStep_|QuickstartSweep' -benchmem
//
// All of them run with b.ReportAllocs, so an allocation regression on the
// hot path shows up here as well as in TestSteadyStateAllocs.
package presim_test

import (
	"testing"

	presim "repro"
	"repro/internal/core"
	"repro/internal/workload"
)

// benchStep measures a warmed-up core's marginal simulation cost on a
// memory-bound workload: ns and allocations per committed µop, plus the
// fraction of simulated cycles the event-driven engine skipped.
func benchStep(b *testing.B, mode presim.Mode) {
	benchStepFidelity(b, mode, presim.FidelityExact)
}

func benchStepFidelity(b *testing.B, mode presim.Mode, fid presim.Fidelity) {
	w, err := workload.ByName("milc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Default(mode)
	cfg.Fidelity = fid
	c, err := core.New(cfg, w.New())
	if err != nil {
		b.Fatal(err)
	}
	c.Run(100_000) // steady state: caches, SST and buffers warmed
	const window = 20_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(window)
	}
	b.StopTimer()
	uops := float64(window) * float64(b.N)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/uops, "ns/uop")
	s := c.Stats()
	b.ReportMetric(100*float64(s.SkippedAhead)/float64(s.Cycles), "skipped_cycle_pct")
}

func BenchmarkStep_OoO(b *testing.B)      { benchStep(b, presim.ModeOoO) }
func BenchmarkStep_RA(b *testing.B)       { benchStep(b, presim.ModeRA) }
func BenchmarkStep_RABuffer(b *testing.B) { benchStep(b, presim.ModeRABuffer) }
func BenchmarkStep_PRE(b *testing.B)      { benchStep(b, presim.ModePRE) }
func BenchmarkStep_PREEMQ(b *testing.B)   { benchStep(b, presim.ModePREEMQ) }

// Fast-runahead fidelity tier variants of the same measurement: chain
// cache + episode emulation on, everything else identical. The
// exact-vs-fast gap per mode is the BENCH_2.json headline.
func BenchmarkStep_FastRA(b *testing.B) {
	benchStepFidelity(b, presim.ModeRA, presim.FidelityFastRunahead)
}
func BenchmarkStep_FastRABuffer(b *testing.B) {
	benchStepFidelity(b, presim.ModeRABuffer, presim.FidelityFastRunahead)
}
func BenchmarkStep_FastPRE(b *testing.B) {
	benchStepFidelity(b, presim.ModePRE, presim.FidelityFastRunahead)
}
func BenchmarkStep_FastPREEMQ(b *testing.B) {
	benchStepFidelity(b, presim.ModePREEMQ, presim.FidelityFastRunahead)
}

// BenchmarkQuickstartSweep times the quickstart scenario end to end —
// libquantum under OoO and PRE with the golden 200k-µop window, fresh
// machines each iteration — the wall-clock number BENCH_*.json tracks.
func BenchmarkQuickstartSweep(b *testing.B) {
	w, err := presim.WorkloadByName("libquantum")
	if err != nil {
		b.Fatal(err)
	}
	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := presim.Run(w, presim.ModeOoO, opt); err != nil {
			b.Fatal(err)
		}
		if _, err := presim.Run(w, presim.ModePRE, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	uops := 2 * float64(opt.WarmupUops+opt.MeasureUops) * float64(b.N)
	b.ReportMetric(uops/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkMemoryBoundSweep times OoO + PRE across the memory-bound
// archetype representatives with quickstart-sized windows — the broader
// trajectory point for the speedup-vs-baseline comparison.
func BenchmarkMemoryBoundSweep(b *testing.B) {
	benchMemoryBoundSweep(b, presim.FidelityExact)
}

// BenchmarkMemoryBoundSweepFast is the same sweep under the fast-runahead
// tier — the aggregate exact-vs-fast wall-clock comparison in
// BENCH_2.json. OoO cells ignore the tier (the core only builds the chain
// cache for runahead modes), so the ratio is diluted by the shared
// baseline exactly as a real sweep's would be.
func BenchmarkMemoryBoundSweepFast(b *testing.B) {
	benchMemoryBoundSweep(b, presim.FidelityFastRunahead)
}

func benchMemoryBoundSweep(b *testing.B, fid presim.Fidelity) {
	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000
	opt.Fidelity = fid
	names := []string{"libquantum", "mcf", "milc", "lbm", "omnetpp"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			w, err := presim.WorkloadByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, mode := range []presim.Mode{presim.ModeOoO, presim.ModePRE} {
				if _, err := presim.Run(w, mode, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	uops := float64(len(names)) * 2 * float64(opt.WarmupUops+opt.MeasureUops) * float64(b.N)
	b.ReportMetric(uops/b.Elapsed().Seconds(), "uops/s")
}
