// Cross-mechanism differential tests: runahead is a prefetching
// optimization, so whatever mechanism runs under the hood, the
// architectural execution must be identical — same µop stream, same
// committed state — and precise runahead must not lose to the baseline
// on the memory-bound workloads it targets.
package presim_test

import (
	"testing"

	presim "repro"
)

// diffOpt is the differential-test window: long enough for hundreds of
// runahead episodes per mechanism, short enough to run all modes on every
// archetype.
func diffOpt() presim.Options {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 10_000
	opt.MeasureUops = 50_000
	return opt
}

// archetypeRepresentatives picks one suite proxy per workload archetype,
// plus a custom pure pointer-chase — the archetype the suite deliberately
// leaves out because runahead cannot help it (see examples/pointerchase).
func archetypeRepresentatives() []presim.Workload {
	reps := []presim.Workload{}
	for _, name := range []string{
		"libquantum", // stream
		"milc",       // indirect
		"lbm",        // stencil
		"omnetpp",    // hashwalk
	} {
		w, err := presim.WorkloadByName(name)
		if err != nil {
			panic(err)
		}
		reps = append(reps, w)
	}
	reps = append(reps, presim.CustomWorkload("ptrchase", func() presim.Generator {
		return presim.NewPtrChase(presim.PtrChaseParams{
			KernelID: 99, Chains: 4, FootprintLines: 1 << 16,
			ALUWork: 12, HotLoads: 4,
		})
	}))
	return reps
}

// TestCommittedStateInvariance asserts that every mechanism commits the
// same architectural µop count over the same measurement window: runahead
// (speculative pre-execution) must never change committed state. The
// commit stage retires up to Width µops per cycle, so the run can
// overshoot the window target by at most Width-1 — that bunching is the
// only difference allowed between mechanisms.
func TestCommittedStateInvariance(t *testing.T) {
	opt := diffOpt()
	width := int64(presim.DefaultConfig(presim.ModeOoO).Width)
	for _, w := range archetypeRepresentatives() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range presim.Modes() {
				r, err := presim.Run(w, mode, opt)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if r.Committed < opt.MeasureUops || r.Committed >= opt.MeasureUops+width {
					t.Errorf("%v: committed %d µops, want [%d, %d) — runahead changed architectural state",
						mode, r.Committed, opt.MeasureUops, opt.MeasureUops+width)
				}
				if mode == presim.ModeOoO && r.Entries != 0 {
					t.Errorf("OoO baseline entered runahead %d times", r.Entries)
				}
			}
		})
	}
}

// TestPRENeverLosesOnMemoryBound asserts the paper's headline property on
// the memory-bound archetypes: PRE's unconditional, non-flushing runahead
// never falls below the out-of-order baseline. The pure pointer-chase is
// excluded — its miss addresses are data-dependent, so runahead has
// nothing to prefetch there (that boundary is the pointerchase example's
// point, not a regression).
func TestPRENeverLosesOnMemoryBound(t *testing.T) {
	opt := diffOpt()
	for _, w := range archetypeRepresentatives() {
		if w.Class == "custom" {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			base, err := presim.Run(w, presim.ModeOoO, opt)
			if err != nil {
				t.Fatal(err)
			}
			pre, err := presim.Run(w, presim.ModePRE, opt)
			if err != nil {
				t.Fatal(err)
			}
			if pre.IPC < base.IPC {
				t.Errorf("PRE IPC %.4f < OoO IPC %.4f (speedup %.3fx)",
					pre.IPC, base.IPC, pre.Speedup(base))
			}
			if pre.Entries == 0 {
				t.Error("PRE never entered runahead on a memory-bound workload")
			}
		})
	}
}
