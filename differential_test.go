// Cross-mechanism differential tests: runahead is a prefetching
// optimization, so whatever mechanism runs under the hood, the
// architectural execution must be identical — same µop stream, same
// committed state — and precise runahead must not lose to the baseline
// on the memory-bound workloads it targets.
package presim_test

import (
	"testing"

	presim "repro"
	"repro/internal/core"
)

// diffOpt is the differential-test window: long enough for hundreds of
// runahead episodes per mechanism, short enough to run all modes on every
// archetype.
func diffOpt() presim.Options {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 10_000
	opt.MeasureUops = 50_000
	return opt
}

// archetypeRepresentatives picks one suite proxy per workload archetype,
// plus a custom pure pointer-chase — the archetype the suite deliberately
// leaves out because runahead cannot help it (see examples/pointerchase).
func archetypeRepresentatives() []presim.Workload {
	reps := []presim.Workload{}
	for _, name := range []string{
		"libquantum", // stream
		"milc",       // indirect
		"lbm",        // stencil
		"omnetpp",    // hashwalk
	} {
		w, err := presim.WorkloadByName(name)
		if err != nil {
			panic(err)
		}
		reps = append(reps, w)
	}
	reps = append(reps, presim.CustomWorkload("ptrchase", func() presim.Generator {
		return presim.NewPtrChase(presim.PtrChaseParams{
			KernelID: 99, Chains: 4, FootprintLines: 1 << 16,
			ALUWork: 12, HotLoads: 4,
		})
	}))
	return reps
}

// TestCommittedStateInvariance asserts that every mechanism commits the
// same architectural µop count over the same measurement window: runahead
// (speculative pre-execution) must never change committed state. The
// commit stage retires up to Width µops per cycle, so the run can
// overshoot the window target by at most Width-1 — that bunching is the
// only difference allowed between mechanisms.
func TestCommittedStateInvariance(t *testing.T) {
	opt := diffOpt()
	width := int64(presim.DefaultConfig(presim.ModeOoO).Width)
	for _, w := range archetypeRepresentatives() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range presim.Modes() {
				r, err := presim.Run(w, mode, opt)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if r.Committed < opt.MeasureUops || r.Committed >= opt.MeasureUops+width {
					t.Errorf("%v: committed %d µops, want [%d, %d) — runahead changed architectural state",
						mode, r.Committed, opt.MeasureUops, opt.MeasureUops+width)
				}
				if mode == presim.ModeOoO && r.Entries != 0 {
					t.Errorf("OoO baseline entered runahead %d times", r.Entries)
				}
			}
		})
	}
}

// TestPFCommittedStateInvariance extends the committed-state invariant to
// the prefetcher axis: a hardware prefetcher only warms caches, so every
// +PF configuration must commit the same architectural µop count as its
// base mode — identical up to the Width-1 commit bunching the base
// invariance test already allows between mechanisms (prefetching shifts
// which cycle the window-closing commits land on, never which µops
// commit).
func TestPFCommittedStateInvariance(t *testing.T) {
	opt := diffOpt()
	width := int64(presim.DefaultConfig(presim.ModeOoO).Width)
	reps := []string{"libquantum", "milc", "omnetpp"} // stream, indirect, hashwalk
	for _, name := range reps {
		w, err := presim.WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range presim.Modes() {
				base, err := presim.Run(w, mode, opt)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				for _, v := range presim.PrefetchVariants() {
					if !v.L1D.Enabled() && !v.L2.Enabled() {
						continue
					}
					v := v
					o := opt
					o.Configure = func(c *core.Config) { c.ApplyPrefetch(v) }
					r, err := presim.Run(w, mode, o)
					if err != nil {
						t.Fatalf("%v+%s: %v", mode, v.Name, err)
					}
					if r.Committed < opt.MeasureUops || r.Committed >= opt.MeasureUops+width {
						t.Errorf("%v+%s: committed %d µops, want [%d, %d) — prefetching changed architectural state",
							mode, v.Name, r.Committed, opt.MeasureUops, opt.MeasureUops+width)
					}
					if d := r.Committed - base.Committed; d >= width || d <= -width {
						t.Errorf("%v+%s: committed %d µops vs base %d (beyond commit bunching)",
							mode, v.Name, r.Committed, base.Committed)
					}
				}
			}
		})
	}
}

// TestStridePFNeverLosesOnRegular asserts the hardware-prefetcher sanity
// bound: on the address-computable archetypes (streaming and stencil) an
// OoO core with the L1D stride prefetcher must never fall below the plain
// OoO baseline — those are exactly the patterns a stride engine exists
// for. Data-dependent archetypes are excluded: there a prefetcher may
// legitimately pollute.
func TestStridePFNeverLosesOnRegular(t *testing.T) {
	opt := diffOpt()
	stride, err := presim.PrefetchVariantByName("stride")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"libquantum", "bwaves", "lbm", "GemsFDTD"} {
		w, err := presim.WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base, err := presim.Run(w, presim.ModeOoO, opt)
			if err != nil {
				t.Fatal(err)
			}
			o := opt
			o.Configure = func(c *core.Config) { c.ApplyPrefetch(stride) }
			pf, err := presim.Run(w, presim.ModeOoO, o)
			if err != nil {
				t.Fatal(err)
			}
			if pf.IPC < base.IPC {
				t.Errorf("OoO+stride IPC %.4f < OoO IPC %.4f (speedup %.3fx)",
					pf.IPC, base.IPC, pf.Speedup(base))
			}
			if pf.HWPrefIssued == 0 {
				t.Error("stride prefetcher never issued on a regular-access workload")
			}
			if pf.HWPrefUseful == 0 {
				t.Error("stride prefetcher issued but nothing was useful")
			}
		})
	}
}

// TestPRENeverLosesOnMemoryBound asserts the paper's headline property on
// the memory-bound archetypes: PRE's unconditional, non-flushing runahead
// never falls below the out-of-order baseline. The pure pointer-chase is
// excluded — its miss addresses are data-dependent, so runahead has
// nothing to prefetch there (that boundary is the pointerchase example's
// point, not a regression).
func TestPRENeverLosesOnMemoryBound(t *testing.T) {
	opt := diffOpt()
	for _, w := range archetypeRepresentatives() {
		if w.Class == "custom" {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			base, err := presim.Run(w, presim.ModeOoO, opt)
			if err != nil {
				t.Fatal(err)
			}
			pre, err := presim.Run(w, presim.ModePRE, opt)
			if err != nil {
				t.Fatal(err)
			}
			if pre.IPC < base.IPC {
				t.Errorf("PRE IPC %.4f < OoO IPC %.4f (speedup %.3fx)",
					pre.IPC, base.IPC, pre.Speedup(base))
			}
			if pre.Entries == 0 {
				t.Error("PRE never entered runahead on a memory-bound workload")
			}
		})
	}
}
