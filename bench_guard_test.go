// Coarse wall-clock regression guard: the quickstart sweep must stay
// within 3x of the recorded BENCH_0.json trajectory point. This is
// deliberately perf-lab-free — CI runners are noisy, so the threshold
// only catches order-of-magnitude regressions (a hot-path structure
// quietly degenerating to O(n), skipping turned off by accident); real
// measurements belong in BENCH_<n>.json points recorded on a quiet host.
//
// Gated behind BENCH_GUARD=1 so ordinary `go test ./...` runs — and
// laptops under load — never flake on it.
package presim_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	presim "repro"
)

// benchGuardFactor is the allowed wall-clock multiple over the recorded
// point before the guard fails.
const benchGuardFactor = 3

func TestBenchGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the wall-clock regression guard")
	}
	raw, err := os.ReadFile("BENCH_0.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		QuickstartSweep struct {
			CurrentMS float64 `json:"current_ms"`
		} `json:"quickstart_sweep"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.QuickstartSweep.CurrentMS <= 0 {
		t.Fatal("BENCH_0.json has no quickstart_sweep.current_ms point")
	}

	// The BenchmarkQuickstartSweep scenario, timed directly: libquantum
	// under OoO and PRE, 50k warmup + 200k measured µops, fresh machines.
	w, err := presim.WorkloadByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000

	// Best of three damps scheduler noise; the guard only needs to see
	// that the machine CAN still run the sweep near the recorded speed.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := presim.Run(w, presim.ModeOoO, opt); err != nil {
			t.Fatal(err)
		}
		if _, err := presim.Run(w, presim.ModePRE, opt); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}

	limit := time.Duration(benchGuardFactor * rec.QuickstartSweep.CurrentMS * float64(time.Millisecond))
	t.Logf("quickstart sweep: best of 3 = %v (recorded %.1fms, limit %v)",
		best, rec.QuickstartSweep.CurrentMS, limit)
	if best > limit {
		t.Errorf("quickstart sweep took %v, over %dx the recorded %.1fms point: hot-path regression",
			best, benchGuardFactor, rec.QuickstartSweep.CurrentMS)
	}
}
