// Coarse wall-clock regression guard: the quickstart and memory-bound
// sweeps must stay within 3x of the newest recorded BENCH_<n>.json
// trajectory point. This is deliberately perf-lab-free — CI runners are
// noisy, so the threshold only catches order-of-magnitude regressions (a
// hot-path structure quietly degenerating to O(n), skipping turned off
// by accident); real measurements belong in BENCH_<n>.json points
// recorded on a quiet host.
//
// Gated behind BENCH_GUARD=1 so ordinary `go test ./...` runs — and
// laptops under load — never flake on it.
package presim_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	presim "repro"
)

// benchGuardFactor is the allowed wall-clock multiple over the recorded
// point before the guard fails.
const benchGuardFactor = 3

// benchRecord is the slice of the BENCH_<n>.json schema the guard reads.
type benchRecord struct {
	QuickstartSweep struct {
		CurrentMS float64 `json:"current_ms"`
	} `json:"quickstart_sweep"`
	MemoryBoundSweep struct {
		CurrentMSTotal float64 `json:"current_ms_total"`
	} `json:"memory_bound_sweep"`
}

// newestBenchPoint loads the highest-numbered BENCH_<n>.json so the
// guard always compares against the most recent trajectory point — a
// newly recorded point tightens the guard without touching this file.
func newestBenchPoint(t *testing.T) (string, benchRecord) {
	t.Helper()
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no BENCH_<n>.json trajectory points found: %v", err)
	}
	best, bestN := "", -1
	for _, m := range matches {
		num := strings.TrimSuffix(strings.TrimPrefix(m, "BENCH_"), ".json")
		n, err := strconv.Atoi(num)
		if err != nil {
			continue // not a trajectory point (e.g. a stray editor file)
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if bestN < 0 {
		t.Fatalf("no numbered BENCH_<n>.json among %v", matches)
	}
	raw, err := os.ReadFile(best)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("%s: %v", best, err)
	}
	return best, rec
}

//sim:wallclock the guard times real execution by design; nothing here reaches results JSON
func TestBenchGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the wall-clock regression guard")
	}
	name, rec := newestBenchPoint(t)
	if rec.QuickstartSweep.CurrentMS <= 0 {
		t.Fatalf("%s has no quickstart_sweep.current_ms point", name)
	}

	// The BenchmarkQuickstartSweep scenario, timed directly: libquantum
	// under OoO and PRE, 50k warmup + 200k measured µops, fresh machines.
	w, err := presim.WorkloadByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000

	// Best of three damps scheduler noise; the guard only needs to see
	// that the machine CAN still run the sweep near the recorded speed.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := presim.Run(w, presim.ModeOoO, opt); err != nil {
			t.Fatal(err)
		}
		if _, err := presim.Run(w, presim.ModePRE, opt); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}

	limit := time.Duration(benchGuardFactor * rec.QuickstartSweep.CurrentMS * float64(time.Millisecond))
	t.Logf("quickstart sweep: best of 3 = %v (recorded %.1fms in %s, limit %v)",
		best, rec.QuickstartSweep.CurrentMS, name, limit)
	if best > limit {
		t.Errorf("quickstart sweep took %v, over %dx the recorded %.1fms point: hot-path regression",
			best, benchGuardFactor, rec.QuickstartSweep.CurrentMS)
	}
}

// TestBenchGuardMemoryBound guards the aggregate memory-bound sweep the
// same way: the full {libquantum, mcf, milc, lbm, omnetpp} x {OoO, PRE}
// grid must finish within the factor of the newest recorded total. The
// wider grid catches regressions a single-workload guard misses — e.g. a
// replay- or pointer-chase-specific slowdown that barely moves
// libquantum.
//
//sim:wallclock the guard times real execution by design; nothing here reaches results JSON
func TestBenchGuardMemoryBound(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the wall-clock regression guard")
	}
	name, rec := newestBenchPoint(t)
	if rec.MemoryBoundSweep.CurrentMSTotal <= 0 {
		t.Fatalf("%s has no memory_bound_sweep.current_ms_total point", name)
	}

	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000
	workloads := []string{"libquantum", "mcf", "milc", "lbm", "omnetpp"}

	start := time.Now()
	for _, wl := range workloads {
		w, err := presim.WorkloadByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []presim.Mode{presim.ModeOoO, presim.ModePRE} {
			if _, err := presim.Run(w, mode, opt); err != nil {
				t.Fatalf("%s/%v: %v", wl, mode, err)
			}
		}
	}
	elapsed := time.Since(start)

	limit := time.Duration(benchGuardFactor * rec.MemoryBoundSweep.CurrentMSTotal * float64(time.Millisecond))
	t.Logf("memory-bound sweep: %v (recorded %.1fms in %s, limit %v)",
		elapsed, rec.MemoryBoundSweep.CurrentMSTotal, name, limit)
	if elapsed > limit {
		t.Errorf("memory-bound sweep took %v, over %dx the recorded %.1fms total: hot-path regression",
			elapsed, benchGuardFactor, rec.MemoryBoundSweep.CurrentMSTotal)
	}
}
