// Scenario-fuzz gate: the differential invariants the fixed-suite tests
// pin must hold over *sampled* workloads too. A date-pinned base seed
// keeps every CI run on the same population slice; the results artifact
// records each scenario's sampled parameters, so a failing seed is
// reproducible from the artifact alone (see TestScenarioFuzzArtifactReproduction).
package presim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	presim "repro"
	"repro/internal/core"
	"repro/internal/exp"
)

// fuzzCount is the population size of the CI gate: large enough to hit
// several archetype mixes, small enough for a CI smoke.
const fuzzCount = 8

// fuzzOpt keeps windows CI-sized: hundreds of runahead episodes per
// scenario, seconds per test.
func fuzzOpt() presim.Options {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 4_000
	opt.MeasureUops = 20_000
	return opt
}

// fuzzScenarios samples the date-pinned CI population.
func fuzzScenarios(t testing.TB) []presim.Workload {
	t.Helper()
	space := presim.DefaultSynthSpace()
	ws := make([]presim.Workload, 0, fuzzCount)
	for i := 0; i < fuzzCount; i++ {
		sc, err := space.Sample(presim.SynthNthSeed(presim.SynthDefaultBaseSeed, i))
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, sc.Workload())
	}
	return ws
}

// fuzzMatrix is the population matrix the worker-determinism and
// artifact-reproduction checks share. RA-buffer rides along because its
// replay engine interacts with sampled phase boundaries (a mid-episode
// phase switch kills the frozen chain) in ways the fixed suite never
// schedules.
func fuzzMatrix() presim.Experiment {
	return presim.Experiment{
		Name:  "scenario_fuzz",
		Modes: []presim.Mode{presim.ModeOoO, presim.ModeRABuffer, presim.ModePRE},
		Population: &presim.Population{
			Space: presim.DefaultSynthSpace(),
			Count: fuzzCount,
		},
		Options: fuzzOpt(),
	}
}

// TestScenarioFuzzCommittedInvariance extends the committed-state
// invariant to sampled scenarios: whatever archetype phases a seed draws,
// every mechanism must commit the same architectural µop count (up to the
// usual Width-1 commit bunching).
func TestScenarioFuzzCommittedInvariance(t *testing.T) {
	opt := fuzzOpt()
	width := int64(presim.DefaultConfig(presim.ModeOoO).Width)
	for _, w := range fuzzScenarios(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range presim.Modes() {
				r, err := presim.Run(w, mode, opt)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if r.Committed < opt.MeasureUops || r.Committed >= opt.MeasureUops+width {
					t.Errorf("%v: committed %d µops, want [%d, %d) — runahead changed architectural state on a sampled scenario",
						mode, r.Committed, opt.MeasureUops, opt.MeasureUops+width)
				}
			}
		})
	}
}

// TestScenarioFuzzWorkerDeterminism extends the byte-identical results
// contract to population sweeps: the fuzz matrix must serialize
// identically at 1 and 4 workers.
func TestScenarioFuzzWorkerDeterminism(t *testing.T) {
	var reference []byte
	for _, workers := range []int{1, 4} {
		plan, err := fuzzMatrix().Expand()
		if err != nil {
			t.Fatal(err)
		}
		set, err := plan.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = buf.Bytes()
			continue
		}
		if !bytes.Equal(reference, buf.Bytes()) {
			t.Fatalf("population results JSON differs between 1 and 4 workers")
		}
	}
}

// TestScenarioFuzzArtifactReproduction closes the reproducibility loop:
// take a results document, rebuild a scenario from ONLY its recorded
// synth parameters, re-simulate, and require the identical result — the
// property that makes a failing CI seed debuggable from the artifact.
func TestScenarioFuzzArtifactReproduction(t *testing.T) {
	plan, err := fuzzMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc exp.Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != presim.ResultsSchemaVersion {
		t.Fatalf("artifact schema %d, want %d", doc.Schema, presim.ResultsSchemaVersion)
	}
	reproduced := 0
	for _, c := range doc.Cells {
		if c.Synth == nil {
			t.Fatalf("population cell %s/%s lacks synth params", c.Workload, c.Mode)
		}
		if c.Mode != presim.ModePRE.String() || reproduced >= 2 {
			continue // re-simulating every cell would double the test's cost
		}
		sc, err := presim.SynthFromParams(*c.Synth)
		if err != nil {
			t.Fatalf("cell %s: params do not rebuild: %v", c.Workload, err)
		}
		if sc.Name() != c.Workload {
			t.Errorf("rebuilt scenario name %q != cell workload %q", sc.Name(), c.Workload)
		}
		r, err := presim.Run(sc.Workload(), presim.ModePRE, fuzzOpt())
		if err != nil {
			t.Fatal(err)
		}
		if r.IPC != c.Result.IPC || r.Cycles != c.Result.Cycles {
			t.Errorf("%s: artifact-rebuilt run diverges: IPC %v vs %v, cycles %d vs %d",
				c.Workload, r.IPC, c.Result.IPC, r.Cycles, c.Result.Cycles)
		}
		reproduced++
	}
	if reproduced == 0 {
		t.Fatal("no PRE cells reproduced")
	}
}

// TestScenarioFuzzCycleSkipDifferential runs one sampled scenario under
// every mechanism with the cycle skipper forced off and requires
// byte-identical results JSON — the results-document-level counterpart of
// internal/core's TestCycleSkipLockstepSynth.
func TestScenarioFuzzCycleSkipDifferential(t *testing.T) {
	w := fuzzScenarios(t)[0]
	run := func(opt presim.Options) []byte {
		m := presim.Experiment{
			Name:      "fuzz_skip",
			Workloads: []presim.Workload{w},
			Modes:     presim.Modes(),
			Options:   opt,
		}
		plan, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		set, err := plan.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fast := run(fuzzOpt())
	slow := fuzzOpt()
	slow.DisableCycleSkip = true
	if !bytes.Equal(fast, run(slow)) {
		t.Fatal("sampled-scenario results JSON differs with cycle skipping on vs off")
	}
}

// fuzzFidelityIPCDeltaBound is the sampled-scenario counterpart of
// fidelityIPCDeltaBound, slightly looser because unseen workload shapes
// drift two-sided: the measured extremes on the date-pinned population
// are -10.2% (PRE) and +23.7% (RA on a deeply memory-bound seed, where
// the entry-paced injected set is more timely than an exact episode
// whose slice poisons to INV mid-way — the emulation out-prefetching
// the mechanism it summarizes). The fixed archetype representatives
// stay under the tighter fidelity_test.go bound.
const fuzzFidelityIPCDeltaBound = 0.30

// TestScenarioFuzzFidelityDifferential extends the fast-runahead
// fidelity gate (fidelity_test.go) to sampled scenarios: on the
// date-pinned population, every runahead mechanism run under the fast
// tier must commit the same architectural µop count as the exact tier
// (up to commit bunching) and stay inside the pinned IPC error bound.
// This is the CI backstop against the approximate tier drifting on
// workload shapes the fixed suite never schedules.
func TestScenarioFuzzFidelityDifferential(t *testing.T) {
	opt := diffOpt()
	width := int64(presim.DefaultConfig(presim.ModeOoO).Width)
	for _, w := range fuzzScenarios(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range fidelityModes() {
				exact, err := presim.Run(w, mode, opt)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				fo := opt
				fo.Fidelity = presim.FidelityFastRunahead
				fast, err := presim.Run(w, mode, fo)
				if err != nil {
					t.Fatalf("%v/fast: %v", mode, err)
				}
				if fast.Committed < opt.MeasureUops || fast.Committed >= opt.MeasureUops+width {
					t.Errorf("%v: fast tier committed %d µops, want [%d, %d)",
						mode, fast.Committed, opt.MeasureUops, opt.MeasureUops+width)
				}
				if d := fast.Committed - exact.Committed; d >= width || d <= -width {
					t.Errorf("%v: fast tier committed %d µops vs exact %d — emulation changed architectural state",
						mode, fast.Committed, exact.Committed)
				}
				delta := (fast.IPC - exact.IPC) / exact.IPC
				if delta > fuzzFidelityIPCDeltaBound || delta < -fuzzFidelityIPCDeltaBound {
					t.Errorf("%v: fast-tier IPC %.4f vs exact %.4f (%+.1f%%), bound ±%.0f%%",
						mode, fast.IPC, exact.IPC, 100*delta, 100*fuzzFidelityIPCDeltaBound)
				}
				t.Logf("%-9v IPC %+.2f%%  emulated %d episodes", mode, 100*delta, fast.EmulatedEpisodes)
			}
		})
	}
}

// frontEndScenarios samples the date-pinned front-end-bound population —
// codewalk-heavy instruction footprints, the first scenarios where the
// PF axis touches the L1I.
func frontEndScenarios(t testing.TB, n int) []presim.Workload {
	t.Helper()
	space := presim.FrontEndSynthSpace()
	ws := make([]presim.Workload, 0, n)
	for i := 0; i < n; i++ {
		sc, err := space.Sample(presim.SynthNthSeed(presim.SynthDefaultBaseSeed, i))
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, sc.Workload())
	}
	return ws
}

// adaptiveVariants are the adaptive-layer grid points the fuzz gate runs
// in addition to the open-loop pair the older tests cover.
var adaptiveVariants = []string{"l1i-nl", "throttled", "filtered", "adaptive"}

// TestScenarioFuzzPFVariantsCommittedInvariance extends the
// equal-committed-µops invariant matrix to the adaptive prefetching
// layer: on sampled scenarios from both the default and the
// front-end-bound populations, every mechanism crossed with the
// throttled / L1I / filtered / adaptive variants must commit the same
// architectural µop count — degree feedback, fetch-stream prefetching
// and the PRE-aware filter only move cycles, never committed state.
func TestScenarioFuzzPFVariantsCommittedInvariance(t *testing.T) {
	opt := fuzzOpt()
	width := int64(presim.DefaultConfig(presim.ModeOoO).Width)
	// Scenario names encode only the seed, and both populations draw the
	// same NthSeed sequence — prefix the subtests with the space so a
	// failing seed names the population that produced it.
	type popScenario struct {
		space string
		w     presim.Workload
	}
	var ws []popScenario
	for _, w := range fuzzScenarios(t)[:2] {
		ws = append(ws, popScenario{"default", w})
	}
	for _, w := range frontEndScenarios(t, 2) {
		ws = append(ws, popScenario{"frontend", w})
	}
	for _, ps := range ws {
		w := ps.w
		t.Run(ps.space+"/"+w.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range []presim.Mode{presim.ModeOoO, presim.ModePRE} {
				for _, name := range adaptiveVariants {
					v, err := presim.PrefetchVariantByName(name)
					if err != nil {
						t.Fatal(err)
					}
					o := opt
					o.Configure = func(c *core.Config) { c.ApplyPrefetch(v) }
					r, err := presim.Run(w, mode, o)
					if err != nil {
						t.Fatalf("%v+%s: %v", mode, name, err)
					}
					if r.Committed < opt.MeasureUops || r.Committed >= opt.MeasureUops+width {
						t.Errorf("%v+%s: committed %d µops, want [%d, %d) — adaptive prefetching changed architectural state",
							mode, name, r.Committed, opt.MeasureUops, opt.MeasureUops+width)
					}
				}
			}
		})
	}
}

// TestScenarioFuzzFrontEndCycleSkipDifferential pins the byte-identical
// cycle-skip contract on the new machinery all at once: a sampled
// front-end-bound scenario under the full throttled+L1I+filtered variant
// must serialize identically with the skipper forced off.
func TestScenarioFuzzFrontEndCycleSkipDifferential(t *testing.T) {
	w := frontEndScenarios(t, 1)[0]
	adaptive, err := presim.PrefetchVariantByName("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	run := func(opt presim.Options) []byte {
		m := presim.Experiment{
			Name:      "fuzz_frontend_skip",
			Workloads: []presim.Workload{w},
			Modes:     []presim.Mode{presim.ModeOoO, presim.ModePRE},
			Points: []presim.ExperimentPoint{{Name: "adaptive", Apply: func(c *core.Config) {
				c.ApplyPrefetch(adaptive)
			}}},
			Options: opt,
		}
		plan, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		set, err := plan.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fast := run(fuzzOpt())
	slow := fuzzOpt()
	slow.DisableCycleSkip = true
	if !bytes.Equal(fast, run(slow)) {
		t.Fatal("front-end-bound adaptive-PF results JSON differs with cycle skipping on vs off")
	}
}
