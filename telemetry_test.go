// Telemetry contract tests: tracing is sidecar-only. Attaching a
// recorder must not perturb a single architectural counter — the results
// JSON with telemetry on is byte-identical to telemetry off — and the
// trace itself must round-trip as Chrome trace_event JSON with the spans
// the ISSUE promises (runahead episodes on real runs).
package presim_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	presim "repro"
	"repro/internal/core"
)

// telOpt keeps the differential CI-sized while still covering hundreds
// of runahead episodes and several throttle epochs.
func telOpt() presim.Options {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 5_000
	opt.MeasureUops = 30_000
	return opt
}

// TestTraceSidecarOnlyDifferential runs every archetype representative
// under every mechanism twice — bare, and with a trace recorder attached
// — and requires the marshaled Results to be byte-identical. The
// "adaptive" prefetch variant rides along on one workload to cover the
// throttle-decision hook, which samples the adaptive engine around its
// Feedback call.
func TestTraceSidecarOnlyDifferential(t *testing.T) {
	type point struct {
		w  presim.Workload
		pf string
	}
	points := []point{}
	for _, w := range archetypeRepresentatives() {
		points = append(points, point{w, "no-pf"})
	}
	lib, err := presim.WorkloadByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	points = append(points, point{lib, "adaptive"})

	for _, p := range points {
		p := p
		t.Run(fmt.Sprintf("%s/%s", p.w.Name, p.pf), func(t *testing.T) {
			t.Parallel()
			variant, err := presim.PrefetchVariantByName(p.pf)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range presim.Modes() {
				opt := telOpt()
				opt.Configure = func(c *core.Config) { c.ApplyPrefetch(variant) }
				bare, err := presim.Run(p.w, m, opt)
				if err != nil {
					t.Fatal(err)
				}

				opt = telOpt()
				opt.Configure = func(c *core.Config) { c.ApplyPrefetch(variant) }
				rec := presim.NewTraceRecorder(fmt.Sprintf("%s/%s", p.w.Name, m))
				opt.Trace = rec
				traced, err := presim.Run(p.w, m, opt)
				if err != nil {
					t.Fatal(err)
				}

				a, err := json.Marshal(bare)
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(traced)
				if err != nil {
					t.Fatal(err)
				}
				if string(a) != string(b) {
					t.Errorf("%s: results diverge with telemetry attached\nbare:   %s\ntraced: %s", m, a, b)
				}
				// Episodes must appear whenever the run actually entered
				// runahead (ptrchase's footprint fits the LLC at this
				// window, so it legitimately never enters).
				if m != presim.ModeOoO && traced.Entries > 0 && rec.Episodes() == 0 {
					t.Errorf("%s: run entered runahead %d times but trace has no episodes", m, traced.Entries)
				}
			}
		})
	}
}

// TestTraceSchemaRoundTrip records a sampled synth scenario under PRE
// and checks the serialized sidecar parses back with the promised
// structure: episode spans with PC/stall-cause args, a metrics block
// with episode-length histograms, and monotone non-negative timestamps.
func TestTraceSchemaRoundTrip(t *testing.T) {
	space := presim.DefaultSynthSpace()
	var rec *presim.TraceRecorder
	for i := 0; i < 8; i++ {
		sc, err := space.Sample(presim.SynthNthSeed(presim.SynthDefaultBaseSeed, i))
		if err != nil {
			t.Fatal(err)
		}
		w := sc.Workload()
		opt := telOpt()
		r := presim.NewTraceRecorder(w.Name + "/PRE")
		opt.Trace = r
		if _, err := presim.Run(w, presim.ModePRE, opt); err != nil {
			t.Fatal(err)
		}
		if r.Episodes() > 0 {
			rec = r
			break
		}
	}
	if rec == nil {
		t.Fatal("no sampled scenario produced a runahead episode under PRE")
	}

	path := t.TempDir() + "/trace.json"
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
		Metrics         []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("sidecar is not valid JSON: %v", err)
	}
	episodes := 0
	for _, e := range doc.TraceEvents {
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %q has negative time: ts=%d dur=%d", e.Name, e.Ts, e.Dur)
		}
		if e.Cat == "runahead" && e.Ph == "X" {
			episodes++
			if _, ok := e.Args["pc"]; !ok {
				t.Errorf("episode span missing pc arg: %v", e.Args)
			}
			if _, ok := e.Args["stall_cause"]; !ok {
				t.Errorf("episode span missing stall_cause arg: %v", e.Args)
			}
		}
	}
	if episodes != rec.Episodes() {
		t.Errorf("serialized %d episode spans, recorder counted %d", episodes, rec.Episodes())
	}
	metricNames := map[string]bool{}
	for _, m := range doc.Metrics {
		metricNames[m.Name] = true
	}
	for _, want := range []string{
		"trace/episode_cycles", "trace/episode_prefetches",
		"core/cycles", "core/runahead/entries", "mem/l3/misses",
	} {
		if !metricNames[want] {
			t.Errorf("metrics block missing %q", want)
		}
	}
}
