// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus engineering micro-benchmarks for the simulator
// substrates. Custom metrics carry the reproduced quantities:
//
//	go test -bench=Fig2 -benchmem        # Figure 2 speedups, per benchmark
//	go test -bench=Fig3                  # Figure 3 energy savings
//	go test -bench=E4                    # refill penalty (§2.4, ~56 cycles)
//	go test -bench=. -benchmem           # everything
//
// Metrics are emitted per sub-benchmark ("speedup_<mode>" for Figure 2,
// "saving_pct_<mode>" for Figure 3, experiment-specific units for the
// in-text measurements E4-E9), except the A1/A2 ablations, which run as a
// single exp-orchestrated sweep per benchmark and emit one suffixed
// metric per size ("speedup_PRE_<entries>").
package presim_test

import (
	"fmt"
	"testing"

	presim "repro"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/rename"
	"repro/internal/runahead"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workload"
)

// benchOpt keeps per-iteration cost moderate; the cmd/figures harness uses
// larger windows for the recorded EXPERIMENTS.md numbers.
func benchOpt() presim.Options {
	opt := presim.DefaultOptions()
	opt.WarmupUops = 20_000
	opt.MeasureUops = 100_000
	return opt
}

// metricName flattens a mode name into a metric suffix.
func metricName(prefix string, m presim.Mode) string {
	s := map[presim.Mode]string{
		presim.ModeRA: "RA", presim.ModeRABuffer: "RAbuf",
		presim.ModePRE: "PRE", presim.ModePREEMQ: "PREEMQ",
	}[m]
	return prefix + "_" + s
}

// BenchmarkTable1Config exercises machine construction with the paper's
// Table 1 configuration (E1) and reports the runahead structures' storage.
func BenchmarkTable1Config(b *testing.B) {
	w, _ := presim.WorkloadByName("mcf")
	for i := 0; i < b.N; i++ {
		cfg := presim.DefaultConfig(presim.ModePRE)
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		c, err := core.New(cfg, w.New())
		if err != nil {
			b.Fatal(err)
		}
		_ = c
	}
	b.ReportMetric(float64(runahead.NewSST(256).StorageBytes()), "SST_bytes")
	b.ReportMetric(float64(runahead.NewPRDQ(192).StorageBytes()), "PRDQ_bytes")
	b.ReportMetric(float64(runahead.NewEMQ(768).StorageBytes()), "EMQ_bytes")
}

// runCellMatrix expands and runs a one-workload experiment over the given
// modes — the exp-orchestrated core of the figure benchmarks.
func runCellMatrix(b *testing.B, w presim.Workload, modes []presim.Mode) *presim.ExperimentSet {
	b.Helper()
	m := presim.Experiment{
		Workloads: []presim.Workload{w},
		Modes:     modes,
		Options:   benchOpt(),
	}
	plan, err := m.Expand()
	if err != nil {
		b.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkFig2 reproduces Figure 2: per-benchmark speedups of every
// runahead mechanism over the out-of-order baseline.
func BenchmarkFig2(b *testing.B) {
	modes := presim.Modes()
	for _, w := range presim.Workloads() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var set *presim.ExperimentSet
			for i := 0; i < b.N; i++ {
				set = runCellMatrix(b, w, modes)
			}
			for mi, m := range modes {
				if m == presim.ModeOoO {
					continue
				}
				b.ReportMetric(set.Speedup(0, 0, mi), metricName("speedup", m))
			}
			base, _ := set.Baseline(0, 0)
			b.ReportMetric(base.IPC, "baseline_IPC")
		})
	}
}

// BenchmarkFig3 reproduces Figure 3: per-benchmark energy savings of every
// mechanism relative to the baseline (positive = less energy).
func BenchmarkFig3(b *testing.B) {
	modes := presim.Modes()
	for _, w := range presim.Workloads() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var set *presim.ExperimentSet
			for i := 0; i < b.N; i++ {
				set = runCellMatrix(b, w, modes)
			}
			base, _ := set.Baseline(0, 0)
			for mi, m := range modes {
				if m == presim.ModeOoO {
					continue
				}
				b.ReportMetric(100*set.Result(0, 0, mi).Energy.SavingsVs(base.Energy),
					metricName("saving_pct", m))
			}
		})
	}
}

// BenchmarkE4RefillPenalty measures the flush-exit refill penalty of the
// discarding mechanisms (§2.4's ~56-cycle estimate).
func BenchmarkE4RefillPenalty(b *testing.B) {
	for _, name := range []string{"libquantum", "milc", "omnetpp"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, _ := presim.WorkloadByName(name)
			var r presim.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = presim.Run(w, presim.ModeRA, benchOpt())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.RefillPenaltyMean, "refill_cycles")
		})
	}
}

// BenchmarkE5ShortIntervals measures the fraction of runahead intervals
// below 20 cycles under PRE, which enters unconditionally (§2.4: 27%).
func BenchmarkE5ShortIntervals(b *testing.B) {
	for _, name := range []string{"libquantum", "mcf", "milc"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, _ := presim.WorkloadByName(name)
			var r presim.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = presim.Run(w, presim.ModePRE, benchOpt())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*r.IntervalFracBelow20, "short_interval_pct")
			b.ReportMetric(r.IntervalMean, "interval_cycles")
		})
	}
}

// BenchmarkE6FreeExit compares RA against the E6 ablation (snapshot exit,
// no window discard) — the paper's 14.5% -> 20.6% potential argument.
func BenchmarkE6FreeExit(b *testing.B) {
	for _, name := range []string{"libquantum", "milc", "omnetpp"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, _ := presim.WorkloadByName(name)
			freeOpt := benchOpt()
			freeOpt.Configure = func(c *core.Config) { c.FreeExit = true }
			var base, ra, raFree presim.Result
			for i := 0; i < b.N; i++ {
				var err error
				base, err = presim.Run(w, presim.ModeOoO, benchOpt())
				if err != nil {
					b.Fatal(err)
				}
				ra, err = presim.Run(w, presim.ModeRA, benchOpt())
				if err != nil {
					b.Fatal(err)
				}
				raFree, err = presim.Run(w, presim.ModeRA, freeOpt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ra.Speedup(base), "speedup_RA")
			b.ReportMetric(raFree.Speedup(base), "speedup_RA_free_exit")
		})
	}
}

// BenchmarkE7FreeResources measures the free-resource headroom at runahead
// entry (§3.4: 37% IQ, 51% int regs, 59% fp regs free).
func BenchmarkE7FreeResources(b *testing.B) {
	var iq, ints, fps float64
	ws := presim.Workloads()
	for i := 0; i < b.N; i++ {
		iq, ints, fps = 0, 0, 0
		for _, w := range ws {
			r, err := presim.Run(w, presim.ModePRE, benchOpt())
			if err != nil {
				b.Fatal(err)
			}
			iq += r.FreeIQFrac
			ints += r.FreeIntFrac
			fps += r.FreeFPFrac
		}
	}
	n := float64(len(ws))
	b.ReportMetric(100*iq/n, "IQ_free_pct")
	b.ReportMetric(100*ints/n, "int_free_pct")
	b.ReportMetric(100*fps/n, "fp_free_pct")
}

// BenchmarkE9InvocationRate measures how much more often PRE and PRE+EMQ
// invoke runahead than RA (§5.1: 1.62x and 1.95x).
func BenchmarkE9InvocationRate(b *testing.B) {
	ws := presim.Workloads()
	var preRatio, emqRatio float64
	for i := 0; i < b.N; i++ {
		var sumPre, sumEmq, n float64
		for _, w := range ws {
			ra, err := presim.Run(w, presim.ModeRA, benchOpt())
			if err != nil {
				b.Fatal(err)
			}
			if ra.Entries == 0 {
				continue
			}
			pre, err := presim.Run(w, presim.ModePRE, benchOpt())
			if err != nil {
				b.Fatal(err)
			}
			emq, err := presim.Run(w, presim.ModePREEMQ, benchOpt())
			if err != nil {
				b.Fatal(err)
			}
			sumPre += float64(pre.Entries) / float64(ra.Entries)
			sumEmq += float64(emq.Entries) / float64(ra.Entries)
			n++
		}
		preRatio, emqRatio = sumPre/n, sumEmq/n
	}
	b.ReportMetric(preRatio, "PRE_vs_RA_entries")
	b.ReportMetric(emqRatio, "PREEMQ_vs_RA_entries")
}

// runAblation sweeps one structure-size knob as an exp matrix: the OoO
// baseline is simulated once and shared across every size point.
func runAblation(b *testing.B, name string, w presim.Workload, mode presim.Mode,
	sizes []int, apply func(*core.Config, int)) *presim.ExperimentSet {
	b.Helper()
	points := make([]presim.ExperimentPoint, len(sizes))
	for i, size := range sizes {
		size := size
		points[i] = presim.ExperimentPoint{
			Name:  fmt.Sprintf("entries_%d", size),
			Apply: func(c *core.Config) { apply(c, size) },
		}
	}
	m := presim.Experiment{
		Name:        name,
		Workloads:   []presim.Workload{w},
		Modes:       []presim.Mode{mode},
		Points:      points,
		Options:     benchOpt(),
		AddBaseline: true,
	}
	plan, err := m.Expand()
	if err != nil {
		b.Fatal(err)
	}
	set, err := plan.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkAblationSSTSize sweeps the SST capacity (A1; paper: 256 entries
// hold the slices with almost no misses).
func BenchmarkAblationSSTSize(b *testing.B) {
	w, _ := presim.WorkloadByName("milc")
	sizes := []int{16, 64, 256, 1024}
	var set *presim.ExperimentSet
	for i := 0; i < b.N; i++ {
		set = runAblation(b, "a1_sst", w, presim.ModePRE, sizes,
			func(c *core.Config, v int) { c.SSTSize = v })
	}
	for pi, size := range sizes {
		b.ReportMetric(set.Speedup(pi, 0, 0), fmt.Sprintf("speedup_PRE_%d", size))
	}
}

// BenchmarkAblationEMQSize sweeps the EMQ capacity (A2; paper: 768 = 4x ROB).
func BenchmarkAblationEMQSize(b *testing.B) {
	w, _ := presim.WorkloadByName("milc")
	sizes := []int{192, 768, 1536}
	var set *presim.ExperimentSet
	for i := 0; i < b.N; i++ {
		set = runAblation(b, "a2_emq", w, presim.ModePREEMQ, sizes,
			func(c *core.Config, v int) { c.EMQSize = v })
	}
	for pi, size := range sizes {
		b.ReportMetric(set.Speedup(pi, 0, 0), fmt.Sprintf("speedup_PREEMQ_%d", size))
	}
}

// --- engineering micro-benchmarks -----------------------------------------

// BenchmarkSimThroughput measures raw simulation speed (µops simulated per
// second of host time) for the baseline and PRE.
func BenchmarkSimThroughput(b *testing.B) {
	for _, mode := range []presim.Mode{presim.ModeOoO, presim.ModePRE} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			w, _ := presim.WorkloadByName("milc")
			opt := sim.Options{WarmupUops: 5_000, MeasureUops: 50_000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(w, mode, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(55_000*b.N)/b.Elapsed().Seconds(), "uops/s")
		})
	}
}

// BenchmarkCacheLookup measures the L1 tag-store hot path.
func BenchmarkCacheLookup(b *testing.B) {
	c := cache.New(cache.Config{Name: "B", SizeBytes: 32 << 10, Assoc: 8, HitLatency: 4, MSHRs: 10})
	for i := uint64(0); i < 512; i++ {
		c.Insert(i*64, 0, cache.SrcDemand)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%512)*64, int64(i), true)
	}
}

// BenchmarkDRAMAccess measures the bank/row timing model.
func BenchmarkDRAMAccess(b *testing.B) {
	d := dram.New(dram.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(uint64(i)*64, int64(i)*4, false)
	}
}

// BenchmarkSSTLookup measures the fully-associative SST hot path.
func BenchmarkSSTLookup(b *testing.B) {
	s := runahead.NewSST(256)
	for i := uint64(0); i < 256; i++ {
		s.Insert(0x400000 + i*4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(0x400000 + uint64(i%300)*4)
	}
}

// BenchmarkRename measures the rename stage hot path.
func BenchmarkRename(b *testing.B) {
	r := rename.New(rename.DefaultConfig())
	u := &uarch.Uop{PC: 4, Class: uarch.ClassIntAlu, Dst: uarch.IntReg(1), Src1: uarch.IntReg(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, ok := r.Rename(u, false)
		if !ok {
			b.Fatal("rename failed")
		}
		r.MarkReady(out.DstP)
		r.Commit(u.Dst, out.DstP)
	}
}

// BenchmarkWorkloadGen measures µop generation speed for every archetype.
func BenchmarkWorkloadGen(b *testing.B) {
	for _, name := range []string{"libquantum", "mcf", "lbm", "soplex"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, _ := workload.ByName(name)
			g := w.New()
			var u uarch.Uop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Next(&u)
			}
		})
	}
}

// BenchmarkTraceWindow measures the sliding-window stream.
func BenchmarkTraceWindow(b *testing.B) {
	w, _ := workload.ByName("libquantum")
	s := trace.NewStream(w.New())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := int64(i)
		s.At(seq)
		if seq > 256 {
			s.Release(seq - 256)
		}
	}
}
