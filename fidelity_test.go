// Fidelity harness for the fast-runahead tier: the differential layer
// that makes an approximate tier shippable. The fast tier emulates
// chain-cache-hit runahead episodes instead of executing them µop by
// µop, which breaks byte-identical results by construction — so this
// file pins exactly how far the approximation may drift from the exact
// tier, on the archetype representatives the differential tests use:
//
//   - committed architectural state: identical. Both tiers commit the
//     same µop stream; counts agree up to the Width-1 commit bunching
//     the cross-mechanism invariance tests already define as "equal".
//   - IPC: within fidelityIPCDeltaBound relative error.
//   - prefetch-set: the cache-line sets prefetched by the two tiers
//     overlap by at least fidelityOverlapBound (Jaccard).
//
// CI enforces these bounds in the scenario-fuzz job (sampled synth
// scenarios ride along via TestScenarioFuzzFidelityDifferential).
package presim_test

import (
	"testing"

	presim "repro"
	"repro/internal/core"
)

// fidelityIPCDeltaBound is the pinned relative IPC error bound — the
// binding constraint of the harness. Measured worst case across the
// matrix is milc/PRE at -13.6% on this deliberately short differential
// window (the probation/verification machinery is still converging;
// 200k-µop windows measure -1%..-9%, error one-sided because the fast
// tier under-prefetches rather than over-reporting). The bound leaves
// margin for the sampled scenarios CI draws while still failing any
// change that would let the tiers tell different stories.
const fidelityIPCDeltaBound = 0.20

// fidelityOverlapBound is the pinned prefetch-set Jaccard floor between
// the exact and fast tiers' prefetched cache-line sets. It is a
// structural diagnostic, deliberately loose: the sets legitimately
// diverge while timing stays tight (a streaming workload's demand
// stream refetches whatever the emulation skipped, so libquantum/RA
// measures overlap 0.20 at IPC delta +0.01%), and the measured floor
// across the matrix is 0.20 (lbm/PRE+EMQ). What it still catches is the
// failure class where emulation stops resembling runahead at all —
// injecting arbitrary addresses would crater this long before the IPC
// gate noticed cache pollution.
const fidelityOverlapBound = 0.15

// fidelityModes are the modes the chain cache can emulate — every
// runahead mechanism (OoO has no episodes and ignores the tier).
func fidelityModes() []presim.Mode {
	return []presim.Mode{presim.ModeRA, presim.ModeRABuffer, presim.ModePRE, presim.ModePREEMQ}
}

// fidelityRun drives one (workload, mode, tier) cell through a bare core
// with a prefetch-address probe attached, using the differential-test
// window (diffOpt): warm up, reset statistics, measure. It returns the
// measured-window stats snapshot and the set of prefetched cache lines.
func fidelityRun(t *testing.T, w presim.Workload, mode presim.Mode, fid presim.Fidelity) (*core.Stats, map[uint64]struct{}) {
	t.Helper()
	opt := diffOpt()
	cfg := core.Default(mode)
	cfg.Fidelity = fid
	c, err := core.New(cfg, w.New())
	if err != nil {
		t.Fatal(err)
	}
	lines := make(map[uint64]struct{})
	measuring := false
	c.OnPrefetch = func(addr uint64) {
		if measuring {
			lines[addr>>6] = struct{}{}
		}
	}
	c.Run(opt.WarmupUops)
	c.ResetStats()
	measuring = true
	c.Run(opt.MeasureUops)
	return c.Stats(), lines
}

// setJaccard is the Jaccard overlap of two cache-line sets (1.0 when
// both are empty).
func setJaccard(a, b map[uint64]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for l := range a {
		if _, ok := b[l]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// TestFidelityFastRunaheadDifferential is the harness gate: exact vs
// fast-runahead on every archetype representative × runahead mode, with
// the committed-state, IPC and prefetch-set bounds pinned above.
func TestFidelityFastRunaheadDifferential(t *testing.T) {
	opt := diffOpt()
	width := int64(presim.DefaultConfig(presim.ModeOoO).Width)
	for _, w := range archetypeRepresentatives() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range fidelityModes() {
				exact, exactLines := fidelityRun(t, w, mode, presim.FidelityExact)
				fast, fastLines := fidelityRun(t, w, mode, presim.FidelityFastRunahead)

				// Committed architectural state: same stream, same count.
				// The run loop retires up to Width µops in its final cycle,
				// so the window target may be overshot by at most Width-1 —
				// the same bunching the cross-mechanism invariance tests
				// allow; any divergence beyond it means the emulation
				// committed (or swallowed) µops.
				for tier, s := range map[string]*core.Stats{"exact": exact, "fast-runahead": fast} {
					if s.Committed < opt.MeasureUops || s.Committed >= opt.MeasureUops+width {
						t.Errorf("%v/%s: committed %d µops, want [%d, %d)",
							mode, tier, s.Committed, opt.MeasureUops, opt.MeasureUops+width)
					}
				}
				if d := fast.Committed - exact.Committed; d >= width || d <= -width {
					t.Errorf("%v: fast tier committed %d µops vs exact %d — emulation changed architectural state",
						mode, fast.Committed, exact.Committed)
				}

				exactIPC := float64(exact.Committed) / float64(exact.Cycles)
				fastIPC := float64(fast.Committed) / float64(fast.Cycles)
				delta := (fastIPC - exactIPC) / exactIPC
				if delta > fidelityIPCDeltaBound || delta < -fidelityIPCDeltaBound {
					t.Errorf("%v: fast-tier IPC %.4f vs exact %.4f (%+.1f%%), bound ±%.0f%%",
						mode, fastIPC, exactIPC, 100*delta, 100*fidelityIPCDeltaBound)
				}

				j := setJaccard(exactLines, fastLines)
				if j < fidelityOverlapBound {
					t.Errorf("%v: prefetch-set overlap %.3f < %.2f (exact %d lines, fast %d lines)",
						mode, j, fidelityOverlapBound, len(exactLines), len(fastLines))
				}
				t.Logf("%-9v IPC %+.2f%% (%.4f vs %.4f)  overlap %.3f  emulated %d/%d entries",
					mode, 100*delta, fastIPC, exactIPC, j, fast.EmulatedEpisodes, fast.Entries)
			}
		})
	}
}
