// Golden-stats regression test: pins the quickstart example's headline
// numbers so perf-affecting refactors fail loudly instead of silently
// drifting from the paper's reproduced measurements. The simulator is
// fully deterministic, so these values are exact — any change means the
// modeled microarchitecture changed.
//
// After an INTENDED model change, regenerate with:
//
//	go test -run TestGoldenQuickstartStats -update
//
// and justify the new numbers in the commit message.
package presim_test

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	presim "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

const goldenPath = "testdata/quickstart_golden.json"

// goldenStats mirrors the quickstart example's scenario: libquantum under
// OoO and PRE with a 200k-µop window.
type goldenStats struct {
	Schema      int    `json:"schema"`
	Workload    string `json:"workload"`
	WarmupUops  int64  `json:"warmup_uops"`
	MeasureUops int64  `json:"measure_uops"`

	BaseIPC    float64 `json:"base_ipc"`
	BaseL3MPKI float64 `json:"base_l3_mpki"`

	PREIPC        float64 `json:"pre_ipc"`
	PREL3MPKI     float64 `json:"pre_l3_mpki"`
	PREEntries    int64   `json:"pre_runahead_entries"`
	PREPrefetches int64   `json:"pre_prefetches"`
}

func measureGolden(t *testing.T) goldenStats {
	t.Helper()
	w, err := presim.WorkloadByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	opt := presim.DefaultOptions()
	opt.MeasureUops = 200_000
	// Hard guard, not a formality: the golden numbers are the pinned
	// exact-tier reference, and `-update` rewrites them from whatever this
	// function measures. If the default tier ever becomes (or is edited
	// to) fast-runahead, regenerating would silently re-baseline the repo
	// on the approximate tier.
	if opt.Fidelity != presim.FidelityExact {
		t.Fatalf("golden stats must be measured in the exact fidelity tier, got %v — never regenerate them from fast-runahead", opt.Fidelity)
	}
	base, err := presim.Run(w, presim.ModeOoO, opt)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := presim.Run(w, presim.ModePRE, opt)
	if err != nil {
		t.Fatal(err)
	}
	return goldenStats{
		Schema:      1,
		Workload:    w.Name,
		WarmupUops:  opt.WarmupUops,
		MeasureUops: opt.MeasureUops,

		BaseIPC:    base.IPC,
		BaseL3MPKI: base.L3MPKI,

		PREIPC:        pre.IPC,
		PREL3MPKI:     pre.L3MPKI,
		PREEntries:    pre.Entries,
		PREPrefetches: pre.Prefetches,
	}
}

func TestGoldenQuickstartStats(t *testing.T) {
	got := measureGolden(t)

	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, '\n')
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %+v", got)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want goldenStats
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if want.Schema != got.Schema {
		t.Fatalf("golden schema %d, test expects %d", want.Schema, got.Schema)
	}

	// The simulator is deterministic; floats are compared with a relative
	// epsilon only to absorb math-library differences across platforms,
	// not model drift.
	const eps = 1e-9
	closeTo := func(a, b float64) bool {
		return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	checkF := func(name string, gotV, wantV float64) {
		if !closeTo(gotV, wantV) {
			t.Errorf("%s drifted: got %v, golden %v (intended? re-pin with -update)", name, gotV, wantV)
		}
	}
	checkI := func(name string, gotV, wantV int64) {
		if gotV != wantV {
			t.Errorf("%s drifted: got %d, golden %d (intended? re-pin with -update)", name, gotV, wantV)
		}
	}
	checkF("baseline IPC", got.BaseIPC, want.BaseIPC)
	checkF("baseline L3 MPKI", got.BaseL3MPKI, want.BaseL3MPKI)
	checkF("PRE IPC", got.PREIPC, want.PREIPC)
	checkF("PRE L3 MPKI", got.PREL3MPKI, want.PREL3MPKI)
	checkI("PRE runahead entries", got.PREEntries, want.PREEntries)
	checkI("PRE prefetches", got.PREPrefetches, want.PREPrefetches)
}
